// Package workflow implements the lightweight workflow management of paper
// §II-E: coordination of coupled applications with data dependencies via a
// shared state file. A writing application locks a file by moving its state
// record to WRITING and releases it with WRITE_DONE; readers use READING /
// READ_DONE; the server-side flush uses FLUSHING / FLUSH_DONE. Lock
// acquire/release is piggybacked on collective file open/close, with only
// the root process touching the state file, so coordination adds one PFS
// round-trip per open/close rather than per-process traffic.
package workflow

import (
	"fmt"

	"univistor/internal/sim"
)

// State is a file's coordination state in the shared state file.
type State int

const (
	// Idle means no application holds the file.
	Idle State = iota
	// Writing means a writer application holds the file.
	Writing
	// WriteDone means the last writer released the file.
	WriteDone
	// Reading means at least one reader application holds the file.
	Reading
	// ReadDone means the last reader released the file.
	ReadDone
	// Flushing means UniviStor servers are flushing the file to the PFS.
	Flushing
	// FlushDone means the last flush completed.
	FlushDone
)

// String returns the state-file token for the state.
func (s State) String() string {
	switch s {
	case Idle:
		return "IDLE"
	case Writing:
		return "WRITING"
	case WriteDone:
		return "WRITE_DONE"
	case Reading:
		return "READING"
	case ReadDone:
		return "READ_DONE"
	case Flushing:
		return "FLUSHING"
	case FlushDone:
		return "FLUSH_DONE"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// entry tracks a file's holders. Writer, readers, and flush are orthogonal
// flags (a flush and readers may overlap); the externally visible State is
// derived, with the most recent transition breaking ties.
type entry struct {
	writer   bool
	readers  int
	flushing bool
	last     State // last state-file token written
	waiters  []*sim.Proc
}

func (e *entry) state() State {
	switch {
	case e.writer:
		return Writing
	case e.flushing:
		return Flushing
	case e.readers > 0:
		return Reading
	default:
		return e.last
	}
}

// Manager is the state-file lock service. One Manager models one state file
// (on the PFS); operations cost opLatency seconds each, charged to the
// calling process — the cost of the state-file RPC.
type Manager struct {
	opLatency float64
	files     map[string]*entry
}

// NewManager returns a manager whose state-file operations cost opLatency
// seconds (use the PFS RPC latency).
func NewManager(opLatency float64) *Manager {
	return &Manager{opLatency: opLatency, files: map[string]*entry{}}
}

func (m *Manager) entryFor(file string) *entry {
	e, ok := m.files[file]
	if !ok {
		e = &entry{last: Idle}
		m.files[file] = e
	}
	return e
}

// StateOf returns the current coordination state of the file.
func (m *Manager) StateOf(file string) State { return m.entryFor(file).state() }

func (m *Manager) wake(e *entry) {
	ws := e.waiters
	e.waiters = nil
	for _, w := range ws {
		w.Resume()
	}
}

// AcquireWrite blocks p until no writer, reader, or flush holds the file,
// then marks it WRITING. Called by the root process at collective
// MPI_File_open in write-only mode.
func (m *Manager) AcquireWrite(p *sim.Proc, file string) {
	p.Sleep(m.opLatency)
	e := m.entryFor(file)
	for e.writer || e.readers > 0 || e.flushing {
		m.wait(p, e)
	}
	e.writer = true
	e.last = Writing
}

// ReleaseWrite marks the file WRITE_DONE and wakes waiters. Called at
// collective close of a write-mode file.
func (m *Manager) ReleaseWrite(p *sim.Proc, file string) {
	p.Sleep(m.opLatency)
	e := m.entryFor(file)
	if !e.writer {
		panic(fmt.Sprintf("workflow: ReleaseWrite on %s in state %s", file, e.state()))
	}
	e.writer = false
	e.last = WriteDone
	m.wake(e)
}

// AcquireRead blocks p while the file is being written — or has never been
// written at all, the incomplete-data hazard of §II-E — then marks it
// READING. Multiple reader applications may hold the file concurrently.
// Files that pre-exist the workflow must be announced with MarkExisting.
func (m *Manager) AcquireRead(p *sim.Proc, file string) {
	p.Sleep(m.opLatency)
	e := m.entryFor(file)
	for e.writer || e.last == Idle {
		m.wait(p, e)
	}
	e.readers++
	e.last = Reading
}

// MarkExisting records that the file already holds complete data (it was
// produced outside this workflow), so readers need not wait for a writer.
func (m *Manager) MarkExisting(file string) {
	e := m.entryFor(file)
	if e.last == Idle {
		e.last = WriteDone
		m.wake(e)
	}
}

// ReleaseRead decrements the reader count; the last reader marks READ_DONE.
func (m *Manager) ReleaseRead(p *sim.Proc, file string) {
	p.Sleep(m.opLatency)
	e := m.entryFor(file)
	if e.readers <= 0 {
		panic(fmt.Sprintf("workflow: ReleaseRead on %s with no readers", file))
	}
	e.readers--
	if e.readers == 0 {
		e.last = ReadDone
		m.wake(e)
	}
}

// BeginFlush blocks until no writer holds the file, then marks it FLUSHING.
// Readers may proceed during a flush (the cached copy stays valid); writers
// must wait for FLUSH_DONE.
func (m *Manager) BeginFlush(p *sim.Proc, file string) {
	p.Sleep(m.opLatency)
	e := m.entryFor(file)
	for e.writer || e.flushing {
		m.wait(p, e)
	}
	e.flushing = true
	e.last = Flushing
}

// EndFlush marks the file FLUSH_DONE and wakes waiting writers.
func (m *Manager) EndFlush(p *sim.Proc, file string) {
	p.Sleep(m.opLatency)
	e := m.entryFor(file)
	if !e.flushing {
		panic(fmt.Sprintf("workflow: EndFlush on %s in state %s", file, e.state()))
	}
	e.flushing = false
	e.last = FlushDone
	m.wake(e)
}

// wait parks p until the entry's state changes.
func (m *Manager) wait(p *sim.Proc, e *entry) {
	e.waiters = append(e.waiters, p)
	p.Park()
}
