package workflow

import (
	"testing"

	"univistor/internal/sim"
)

func TestReaderWaitsForWriter(t *testing.T) {
	e := sim.NewEngine()
	m := NewManager(0)
	var readAt sim.Time = -1
	e.Go("writer", func(p *sim.Proc) {
		m.AcquireWrite(p, "f")
		p.Sleep(5)
		m.ReleaseWrite(p, "f")
	})
	e.Go("reader", func(p *sim.Proc) {
		p.Sleep(1) // arrive mid-write
		m.AcquireRead(p, "f")
		readAt = p.Now()
		m.ReleaseRead(p, "f")
	})
	e.Run()
	if readAt != 5 {
		t.Errorf("reader acquired at %v, want 5 (after writer release)", readAt)
	}
	if got := m.StateOf("f"); got != ReadDone {
		t.Errorf("final state %s, want READ_DONE", got)
	}
}

func TestWriterWaitsForReaders(t *testing.T) {
	e := sim.NewEngine()
	m := NewManager(0)
	m.MarkExisting("f")
	var writeAt sim.Time = -1
	for i := 0; i < 2; i++ {
		d := float64(3 + i)
		e.Go("reader", func(p *sim.Proc) {
			m.AcquireRead(p, "f")
			p.Sleep(d)
			m.ReleaseRead(p, "f")
		})
	}
	e.Go("writer", func(p *sim.Proc) {
		p.Sleep(1)
		m.AcquireWrite(p, "f")
		writeAt = p.Now()
		m.ReleaseWrite(p, "f")
	})
	e.Run()
	// Both readers hold the file until t=4 (the slower one).
	if writeAt != 4 {
		t.Errorf("writer acquired at %v, want 4 (after last reader)", writeAt)
	}
}

func TestConcurrentReadersShare(t *testing.T) {
	e := sim.NewEngine()
	m := NewManager(0)
	m.MarkExisting("f") // pre-existing data: readers need not wait
	var acquired []sim.Time
	for i := 0; i < 3; i++ {
		e.Go("reader", func(p *sim.Proc) {
			m.AcquireRead(p, "f")
			acquired = append(acquired, p.Now())
			p.Sleep(10)
			m.ReleaseRead(p, "f")
		})
	}
	e.Run()
	if len(acquired) != 3 {
		t.Fatalf("%d readers acquired", len(acquired))
	}
	for _, at := range acquired {
		if at != 0 {
			t.Errorf("reader blocked until %v; readers must share", at)
		}
	}
}

func TestWriterExcludesWriter(t *testing.T) {
	e := sim.NewEngine()
	m := NewManager(0)
	var second sim.Time = -1
	e.Go("w1", func(p *sim.Proc) {
		m.AcquireWrite(p, "f")
		p.Sleep(3)
		m.ReleaseWrite(p, "f")
	})
	e.Go("w2", func(p *sim.Proc) {
		p.Sleep(1)
		m.AcquireWrite(p, "f")
		second = p.Now()
		m.ReleaseWrite(p, "f")
	})
	e.Run()
	if second != 3 {
		t.Errorf("second writer acquired at %v, want 3", second)
	}
}

func TestWriterWaitsForFlush(t *testing.T) {
	e := sim.NewEngine()
	m := NewManager(0)
	var writeAt sim.Time = -1
	e.Go("flusher", func(p *sim.Proc) {
		m.BeginFlush(p, "f")
		p.Sleep(7)
		m.EndFlush(p, "f")
	})
	e.Go("writer", func(p *sim.Proc) {
		p.Sleep(1)
		m.AcquireWrite(p, "f")
		writeAt = p.Now()
		m.ReleaseWrite(p, "f")
	})
	e.Run()
	if writeAt != 7 {
		t.Errorf("writer acquired at %v, want 7 (after flush)", writeAt)
	}
}

func TestReaderProceedsDuringFlush(t *testing.T) {
	e := sim.NewEngine()
	m := NewManager(0)
	var readAt sim.Time = -1
	e.Go("flusher", func(p *sim.Proc) {
		m.BeginFlush(p, "f")
		p.Sleep(7)
		m.EndFlush(p, "f")
	})
	e.Go("reader", func(p *sim.Proc) {
		p.Sleep(1)
		m.AcquireRead(p, "f")
		readAt = p.Now()
		m.ReleaseRead(p, "f")
	})
	e.Run()
	if readAt != 1 {
		t.Errorf("reader acquired at %v during flush, want 1 (no wait)", readAt)
	}
}

func TestFlushWaitsForWriter(t *testing.T) {
	e := sim.NewEngine()
	m := NewManager(0)
	var flushAt sim.Time = -1
	e.Go("writer", func(p *sim.Proc) {
		m.AcquireWrite(p, "f")
		p.Sleep(4)
		m.ReleaseWrite(p, "f")
	})
	e.Go("flusher", func(p *sim.Proc) {
		p.Sleep(1)
		m.BeginFlush(p, "f")
		flushAt = p.Now()
		m.EndFlush(p, "f")
	})
	e.Run()
	if flushAt != 4 {
		t.Errorf("flush began at %v, want 4", flushAt)
	}
}

func TestOpLatencyCharged(t *testing.T) {
	e := sim.NewEngine()
	m := NewManager(0.5)
	var done sim.Time
	e.Go("w", func(p *sim.Proc) {
		m.AcquireWrite(p, "f")
		m.ReleaseWrite(p, "f")
		done = p.Now()
	})
	e.Run()
	if done != 1.0 {
		t.Errorf("two state-file ops took %v, want 1.0", done)
	}
}

func TestWorkflowChainWriterThenReaderPipeline(t *testing.T) {
	// Producer writes 3 "time steps"; consumer reads each as soon as the
	// producer's close releases the write lock — the overlap mode of §III-D.
	e := sim.NewEngine()
	m := NewManager(0)
	var reads []sim.Time
	e.Go("producer", func(p *sim.Proc) {
		for step := 0; step < 3; step++ {
			file := string(rune('a' + step))
			m.AcquireWrite(p, file)
			p.Sleep(2) // write the step
			m.ReleaseWrite(p, file)
			p.Sleep(3) // compute
		}
	})
	e.Go("consumer", func(p *sim.Proc) {
		for step := 0; step < 3; step++ {
			file := string(rune('a' + step))
			m.AcquireRead(p, file)
			reads = append(reads, p.Now())
			p.Sleep(1) // analyze
			m.ReleaseRead(p, file)
		}
	})
	e.Run()
	want := []sim.Time{2, 7, 12}
	if len(reads) != 3 {
		t.Fatalf("reads = %v", reads)
	}
	for i := range want {
		if reads[i] != want[i] {
			t.Errorf("read %d at %v, want %v (overlapped with compute)", i, reads[i], want[i])
		}
	}
}

func TestMismatchedReleasePanics(t *testing.T) {
	e := sim.NewEngine()
	m := NewManager(0)
	panicked := false
	e.Go("bad", func(p *sim.Proc) {
		defer func() {
			if recover() != nil {
				panicked = true
			}
		}()
		m.ReleaseWrite(p, "f")
	})
	e.Run()
	if !panicked {
		t.Error("ReleaseWrite without AcquireWrite did not panic")
	}
}
