package univistor

import (
	"bytes"
	"testing"

	"univistor/internal/meta"
	"univistor/internal/topology"
)

func smallOpts() Options {
	o := Defaults()
	o.Machine.Nodes = 2
	o.Machine.CoresPerNode = 8
	o.Machine.DRAMPerNode = 64 << 20
	o.Machine.BBNodes = 2
	o.Machine.BBCapPerNode = 256 << 20
	o.Machine.OSTs = 8
	o.Service.ChunkSize = 1 << 20
	o.Service.MetaRangeSize = 16 << 20
	return o
}

func TestFacadeWriteReadRoundTrip(t *testing.T) {
	c, err := New(smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("f"), 1<<20)
	var got []byte
	job := c.Launch("app", 2, func(a *App) {
		f, err := a.Create("out.h5")
		if err != nil {
			t.Errorf("create: %v", err)
			return
		}
		off := int64(a.Rank()) << 20
		if err := f.WriteAt(off, 1<<20, payload); err != nil {
			t.Errorf("write: %v", err)
		}
		if err := f.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
		a.WaitFlush("out.h5")
		rf, err := a.Open("out.h5")
		if err != nil {
			t.Errorf("open: %v", err)
			return
		}
		if a.Rank() == 1 {
			got, _ = rf.ReadAt(0, 1<<20)
		}
		rf.Close()
	}, WithRanksPerNode(1))
	end, err := c.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	if end <= 0 {
		t.Error("virtual time did not advance")
	}
	if !bytes.Equal(got, payload) {
		t.Error("round trip mismatch")
	}
	if size, ok := c.FileSize("out.h5"); !ok || size != 2<<20 {
		t.Errorf("FileSize = %d, %v", size, ok)
	}
	if b, secs, ok := c.FlushStats("out.h5"); !ok || b != 2<<20 || secs <= 0 {
		t.Errorf("FlushStats = %d bytes, %v s, %v", b, secs, ok)
	}
}

func TestFacadeValidation(t *testing.T) {
	o := smallOpts()
	o.Machine.CoresPerNode = 7 // not divisible by 2 sockets
	if _, err := New(o); err == nil {
		t.Error("invalid machine accepted")
	}
	o = smallOpts()
	o.Service.Alpha = -1
	if _, err := New(o); err == nil {
		t.Error("invalid service config accepted")
	}
}

func TestFacadeDefaultsAreRunnable(t *testing.T) {
	c, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	job := c.Launch("noop", 4, func(a *App) { a.Compute(1); a.Barrier() })
	if _, err := c.Run(job); err != nil {
		t.Fatal(err)
	}
}

func TestRunFigureDispatch(t *testing.T) {
	if _, err := RunFigure("nope", QuickBench()); err == nil {
		t.Error("unknown figure accepted")
	}
	o := QuickBench()
	o.Scales = []int{8}
	r, err := RunFigure("fig5a", o)
	if err != nil {
		t.Fatal(err)
	}
	if r.ID != "fig5a" || len(r.Series) == 0 {
		t.Errorf("unexpected result %+v", r)
	}
	if len(Figures()) < 10 {
		t.Errorf("Figures() lists %d entries", len(Figures()))
	}
}

func TestTwoJobsSharingData(t *testing.T) {
	o := smallOpts()
	o.Service.Workflow = true
	c, err := New(o)
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("w"), 1<<20)
	var got []byte
	producer := c.Launch("producer", 1, func(a *App) {
		f, _ := a.Create("shared.h5")
		f.WriteAt(0, 1<<20, payload)
		a.Compute(0.5)
		f.Close()
	}, WithRanksPerNode(1), WithNodes(0))
	consumer := c.Launch("consumer", 1, func(a *App) {
		f, err := a.Open("shared.h5")
		if err != nil {
			t.Errorf("consumer open: %v", err)
			return
		}
		got, _ = f.ReadAt(0, 1<<20)
		f.Close()
	}, WithRanksPerNode(1), WithNodes(1))
	if _, err := c.Run(producer, consumer); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Error("consumer read mismatch")
	}
}

// Ensure exported tier helpers and machine presets stay consistent.
func TestCoriPresetTiers(t *testing.T) {
	cfg := topology.Cori()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if !meta.TierBB.Shared() {
		t.Error("BB tier must be shared")
	}
}
